//! IND and ANTI synthetic distributions (paper Fig. 7).

use durable_topk_temporal::Dataset;
use rand::prelude::*;

/// Independent uniform data: each attribute of each record drawn i.i.d.
/// from `U[0, 1]` (the paper's IND family, any dimensionality).
///
/// # Panics
/// Panics if `n == 0` or `d == 0`.
pub fn ind(n: usize, d: usize, seed: u64) -> Dataset {
    assert!(n > 0 && d > 0, "n and d must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(d, n);
    let mut row = vec![0.0f64; d];
    for _ in 0..n {
        for x in &mut row {
            *x = rng.random::<f64>();
        }
        ds.push(&row);
    }
    ds
}

/// Anti-correlated 2-d data: points uniform (in angle) on the positive-
/// orthant portion of an annulus centered at the origin with outer radius 1
/// and inner radius 0.8 — "an environment where most of the records gather
/// in the k-skyband" (paper Fig. 7-(2)).
///
/// # Panics
/// Panics if `n == 0`.
pub fn anti(n: usize, seed: u64) -> Dataset {
    assert!(n > 0, "n must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(2, n);
    for _ in 0..n {
        let theta = rng.random::<f64>() * std::f64::consts::FRAC_PI_2;
        // Uniform by area between radii 0.8 and 1.0.
        let r = (0.8f64.powi(2) + rng.random::<f64>() * (1.0 - 0.8f64.powi(2))).sqrt();
        ds.push(&[r * theta.cos(), r * theta.sin()]);
    }
    ds
}

/// Correlated 2-d data: attribute values clustered around the x = y
/// diagonal (the classic counterpart of ANTI in the skyline literature).
/// Correlated data has tiny skylines/skybands — the opposite extreme from
/// ANTI — and is useful for bracketing S-Band's data-distribution
/// sensitivity in ablations.
///
/// # Panics
/// Panics if `n == 0`.
pub fn corr(n: usize, seed: u64) -> Dataset {
    assert!(n > 0, "n must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(2, n);
    for _ in 0..n {
        let base = rng.random::<f64>();
        let jitter = 0.08 * (rng.random::<f64>() - 0.5);
        let x = (base + jitter).clamp(0.0, 1.0);
        let y = (base - jitter).clamp(0.0, 1.0);
        ds.push(&[x, y]);
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_topk_temporal::DatasetStats;

    #[test]
    fn ind_is_unit_cube() {
        let ds = ind(5_000, 3, 1);
        let st = DatasetStats::compute(&ds);
        for c in &st.columns {
            assert!(c.min >= 0.0 && c.max <= 1.0);
            assert!((c.mean - 0.5).abs() < 0.05, "uniform mean ~0.5, got {}", c.mean);
        }
    }

    #[test]
    fn anti_lies_on_annulus() {
        let ds = anti(5_000, 2);
        for r in ds.iter() {
            let norm = (r.attrs[0].powi(2) + r.attrs[1].powi(2)).sqrt();
            assert!((0.8 - 1e-9..=1.0 + 1e-9).contains(&norm), "norm {norm}");
            assert!(r.attrs[0] >= 0.0 && r.attrs[1] >= 0.0);
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(ind(100, 2, 7).raw_attrs(), ind(100, 2, 7).raw_attrs());
        assert_eq!(anti(100, 7).raw_attrs(), anti(100, 7).raw_attrs());
        assert_eq!(corr(100, 7).raw_attrs(), corr(100, 7).raw_attrs());
        assert_ne!(ind(100, 2, 7).raw_attrs(), ind(100, 2, 8).raw_attrs());
    }

    #[test]
    fn corr_hugs_the_diagonal_and_has_tiny_skyband() {
        use durable_topk_geom::k_skyband;
        let ds = corr(2_000, 4);
        for r in ds.iter() {
            assert!((r.attrs[0] - r.attrs[1]).abs() <= 0.081);
        }
        let ids: Vec<u32> = (0..ds.len() as u32).collect();
        let band = k_skyband(&ds, &ids, 3);
        let anti_band = k_skyband(&anti(2_000, 4), &ids, 3);
        assert!(
            band.len() * 5 < anti_band.len(),
            "CORR {} vs ANTI {}",
            band.len(),
            anti_band.len()
        );
    }

    #[test]
    fn anti_has_larger_skyband_than_ind() {
        use durable_topk_geom::k_skyband;
        let n = 800;
        let ids: Vec<u32> = (0..n as u32).collect();
        let anti_ds = anti(n, 3);
        let ind_ds = ind(n, 2, 3);
        let anti_band = k_skyband(&anti_ds, &ids, 3).len();
        let ind_band = k_skyband(&ind_ds, &ids, 3).len();
        assert!(anti_band > 3 * ind_band, "ANTI skyband {anti_band} should dwarf IND {ind_band}");
    }
}
