//! Workload generators for the durable top-k evaluation.
//!
//! Reproduces the paper's dataset families (Table II):
//!
//! * [`synthetic`] — the IND (independent uniform) and ANTI
//!   (anti-correlated annulus) 2-d distributions of Fig. 7, used by the
//!   scalability experiments (Fig. 12, Table VI).
//! * [`rpm`] — the random permutation model of Section V-A (adversarial
//!   values, random arrival order), used to validate Lemma 4.
//! * [`nba`] — a generator standing in for the proprietary NBA box-score
//!   dataset (1M records, 15 attributes, era trends); see DESIGN.md for the
//!   substitution argument.
//! * [`network`] — a generator standing in for KDD Cup 1999 network
//!   connection records (5M records, 37 MinMax-normalized attributes with
//!   heavy tails and bursty attack episodes).
//! * [`preference`] — random preference vectors for query workloads (the
//!   paper averages each measurement over 100 random vectors).

pub mod nba;
pub mod network;
pub mod preference;
pub mod rpm;
pub mod synthetic;

pub use nba::{nba_attribute, nba_like, NBA_ATTRIBUTES};
pub use network::{network_like, NETWORK_DIM};
pub use preference::{preference_suite, random_preference};
pub use rpm::random_permutation_dataset;
pub use synthetic::{anti, corr, ind};
