//! NBA-like box-score generator.
//!
//! Substitutes for the paper's NBA dataset (basketball-reference.com,
//! ~1M player-game records from 1983–2019 with 15 numeric attributes). The
//! generator reproduces the structural properties the evaluation depends on:
//!
//! * records ordered by game date (many records per "day", ties broken by
//!   arrival order, as the paper does);
//! * small-integer, mutually correlated box-score stats (minutes drive
//!   everything; points correlate with field goals, etc.);
//! * *era trends* — pace-era rebound inflation early, a low-rebound era in
//!   the 2000s, a late 3-point boom — which make durability analysis
//!   non-trivial (the paper's Fig. 1 narrative: Duncan's modest 27 boards
//!   were a durable top-1 precisely because of the 2000s trough);
//! * a skewed player-skill distribution (superstars exist).

use durable_topk_temporal::Dataset;
use rand::prelude::*;

/// Attribute names, in column order.
pub const NBA_ATTRIBUTES: [&str; 15] = [
    "points",
    "assists",
    "rebounds",
    "steals",
    "blocks",
    "threes_made",
    "field_goals_made",
    "field_goals_att",
    "free_throws_made",
    "free_throws_att",
    "turnovers",
    "fouls",
    "minutes",
    "plus_minus",
    "efficiency",
];

/// Index of a named attribute in [`NBA_ATTRIBUTES`].
///
/// # Panics
/// Panics if the name is unknown.
pub fn nba_attribute(name: &str) -> usize {
    NBA_ATTRIBUTES
        .iter()
        .position(|&a| a == name)
        .unwrap_or_else(|| panic!("unknown NBA attribute {name:?}"))
}

/// Generates `n` NBA-like records with all 15 attributes.
///
/// Use [`Dataset::project`] to carve the paper's NBA-X subsets, e.g.
/// NBA-2 = `project(&[points, assists])`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn nba_like(n: usize, seed: u64) -> Dataset {
    assert!(n > 0, "n must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(15, n);
    let mut row = [0.0f64; 15];
    for i in 0..n {
        // Position in "history": 0.0 = 1983, 1.0 = 2019.
        let era = i as f64 / n as f64;
        // Era pace multipliers.
        let rebound_era = 1.15 - 0.35 * gaussian_bump(era, 0.62, 0.18); // 2000s trough
        let three_era = 0.35 + 1.9 * era * era; // late boom
        let scoring_era =
            1.0 + 0.15 * gaussian_bump(era, 0.1, 0.2) + 0.2 * gaussian_bump(era, 0.95, 0.15);

        // Player skill: log-normal-ish mixture; rare superstars.
        let skill = {
            let base: f64 = rng.random::<f64>();
            let star_bonus =
                if rng.random::<f64>() < 0.03 { rng.random::<f64>() * 1.5 } else { 0.0 };
            0.25 + base + star_bonus
        };
        let minutes = (8.0 + 34.0 * (skill / 2.75).min(1.0) * rng.random::<f64>().sqrt()).min(48.0);
        let usage = minutes / 48.0;

        let fga = draw_count(&mut rng, 18.0 * usage * skill * scoring_era);
        let fg_pct = 0.38 + 0.14 * rng.random::<f64>();
        let fgm = binomial(&mut rng, fga, fg_pct);
        let three_pct = (0.07 * three_era * rng.random::<f64>()).min(0.9);
        let threes = binomial(&mut rng, fga, three_pct);
        let fta = draw_count(&mut rng, 6.0 * usage * skill);
        let ft_pct = 0.6 + 0.3 * rng.random::<f64>();
        let ftm = binomial(&mut rng, fta, ft_pct);
        let points = 2.0 * (fgm - threes).max(0.0) + 3.0 * threes + ftm;
        let rebounds = draw_count(&mut rng, 7.5 * usage * skill * rebound_era);
        let assists = draw_count(&mut rng, 5.0 * usage * skill);
        let steals = draw_count(&mut rng, 1.4 * usage);
        let blocks = draw_count(&mut rng, 1.2 * usage);
        let turnovers = draw_count(&mut rng, 2.5 * usage);
        let fouls = draw_count(&mut rng, 2.8 * usage).min(6.0);
        let plus_minus = (rng.random::<f64>() * 2.0 - 1.0) * 18.0 * usage + 2.0 * (skill - 1.0);
        let efficiency = points + rebounds + assists + steals + blocks
            - turnovers
            - (fga - fgm).max(0.0)
            - (fta - ftm).max(0.0);

        row = [
            points,
            assists,
            rebounds,
            steals,
            blocks,
            threes,
            fgm,
            fga,
            ftm,
            fta,
            turnovers,
            fouls,
            minutes.round(),
            plus_minus.round(),
            efficiency,
        ];
        ds.push(&row);
    }
    let _ = row;
    ds
}

/// Poisson-ish non-negative integer draw with the given mean (normal
/// approximation, clamped and rounded — adequate for workload shaping).
fn draw_count(rng: &mut StdRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let std = mean.sqrt();
    let z: f64 = {
        // Box–Muller.
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    (mean + std * z).round().max(0.0)
}

fn binomial(rng: &mut StdRng, trials: f64, p: f64) -> f64 {
    let t = trials as u32;
    let mut c = 0u32;
    for _ in 0..t {
        if rng.random::<f64>() < p {
            c += 1;
        }
    }
    c as f64
}

fn gaussian_bump(x: f64, center: f64, width: f64) -> f64 {
    (-((x - center) / width).powi(2)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_topk_temporal::DatasetStats;

    #[test]
    fn attributes_have_plausible_ranges() {
        let ds = nba_like(20_000, 42);
        let st = DatasetStats::compute(&ds);
        let pts = &st.columns[nba_attribute("points")];
        assert!(pts.min >= 0.0);
        assert!(pts.max > 30.0 && pts.max < 150.0, "max points {}", pts.max);
        assert!(pts.mean > 3.0 && pts.mean < 25.0, "mean points {}", pts.mean);
        let reb = &st.columns[nba_attribute("rebounds")];
        assert!(reb.max >= 10.0 && reb.max < 60.0, "max rebounds {}", reb.max);
        let min = &st.columns[nba_attribute("minutes")];
        assert!(min.max <= 48.0);
    }

    #[test]
    fn rebound_era_trough_exists() {
        // Mean rebounds in the trough era (~62% through history) should sit
        // below the early-era mean.
        let n = 60_000;
        let ds = nba_like(n, 7);
        let reb = nba_attribute("rebounds");
        let mean_over = |lo: usize, hi: usize| -> f64 {
            (lo..hi).map(|i| ds.value(i as u32, reb)).sum::<f64>() / (hi - lo) as f64
        };
        let early = mean_over(0, n / 5);
        let trough = mean_over(n * 55 / 100, n * 70 / 100);
        assert!(
            trough < early * 0.9,
            "expected rebound trough ({trough:.2}) well below early era ({early:.2})"
        );
    }

    #[test]
    fn three_point_boom_exists() {
        let n = 60_000;
        let ds = nba_like(n, 7);
        let th = nba_attribute("threes_made");
        let mean_over = |lo: usize, hi: usize| -> f64 {
            (lo..hi).map(|i| ds.value(i as u32, th)).sum::<f64>() / (hi - lo) as f64
        };
        let early = mean_over(0, n / 5);
        let late = mean_over(n * 4 / 5, n);
        assert!(late > early * 1.5, "late threes {late:.2} vs early {early:.2}");
    }

    #[test]
    fn deterministic_and_projectable() {
        let a = nba_like(500, 3);
        let b = nba_like(500, 3);
        assert_eq!(a.raw_attrs(), b.raw_attrs());
        let nba2 = a.project(&[nba_attribute("points"), nba_attribute("assists")]);
        assert_eq!(nba2.dim(), 2);
        assert_eq!(nba2.value(17, 0), a.value(17, nba_attribute("points")));
    }

    #[test]
    #[should_panic(expected = "unknown NBA attribute")]
    fn unknown_attribute_panics() {
        nba_attribute("dunks");
    }
}
