//! Network-connection generator standing in for KDD Cup 1999.
//!
//! The paper's Network dataset has ~5M connection records with 37 numeric
//! attributes (duration, bytes transferred, login attempts, per-host rates,
//! …), MinMax-normalized because of heterogeneous units. What the evaluation
//! exercises is:
//!
//! * prefix-of-d attribute selection (Network-X, d ∈ {2,…,37});
//! * heavy-tailed magnitude columns (a few huge transfers dominate);
//! * bursty anomaly episodes (attack windows where several features spike
//!   together — the durable top-k use case from the introduction);
//! * many sparse / near-constant indicator columns, which is what makes the
//!   high-dimensional k-skyband explode in Fig. 11.

use durable_topk_temporal::Dataset;
use rand::prelude::*;

/// Number of attributes in the full Network-like dataset.
pub const NETWORK_DIM: usize = 37;

/// Generates `n` network-connection-like records with 37 attributes,
/// MinMax-normalized to `[0, 1]` exactly as the paper prepares KDD-99.
///
/// Use [`Dataset::project`] with `&(0..d)` prefixes for Network-X.
///
/// # Panics
/// Panics if `n == 0`.
pub fn network_like(n: usize, seed: u64) -> Dataset {
    assert!(n > 0, "n must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(NETWORK_DIM, n);
    let mut row = [0.0f64; NETWORK_DIM];

    // Attack episodes: intervals where anomaly intensity is high.
    let mut attack_until = 0usize;
    let mut intensity = 0.0f64;

    for i in 0..n {
        if i >= attack_until && rng.random::<f64>() < 2e-4 {
            // Start a burst lasting 200..3000 records.
            attack_until = i + rng.random_range(200..3000);
            intensity = 0.5 + rng.random::<f64>();
        }
        let attacking = i < attack_until;
        let boost = if attacking { 1.0 + intensity } else { 1.0 };

        // Core magnitude features: log-normal tails.
        let duration = lognormal(&mut rng, 1.0, 2.0) * boost;
        let src_bytes = lognormal(&mut rng, 5.0, 2.5) * boost;
        let dst_bytes = lognormal(&mut rng, 4.0, 2.5);
        let logins = if attacking {
            rng.random_range(0..40) as f64 * intensity
        } else {
            rng.random_range(0..3) as f64
        };
        let hosts = if attacking {
            rng.random_range(1..120) as f64 * intensity
        } else {
            rng.random_range(1..8) as f64
        };
        row[0] = duration;
        row[1] = src_bytes;
        row[2] = dst_bytes;
        row[3] = logins;
        row[4] = hosts;

        // Rate features: correlated with the burst state plus noise.
        for (j, cell) in row.iter_mut().enumerate().take(17).skip(5) {
            let base: f64 = rng.random::<f64>();
            *cell = (base * 0.6 + if attacking { 0.4 * intensity.min(1.0) } else { 0.0 }).min(1.0)
                * (1.0 + 0.1 * j as f64);
        }

        // Sparse indicator-ish columns: mostly zero, occasionally one; a few
        // near-constant columns. These are what inflate the k-skyband in
        // high dimensions: any record with a rare 1 in some indicator is
        // hard to dominate.
        for (j, cell) in row.iter_mut().enumerate().take(NETWORK_DIM).skip(17) {
            let sparsity = 0.002 + 0.01 * ((j - 17) as f64 / 20.0);
            *cell = if rng.random::<f64>() < sparsity {
                1.0
            } else if j % 5 == 0 {
                // Low-cardinality "count" column.
                (rng.random_range(0..3) as f64) / 10.0
            } else {
                0.0
            };
        }
        ds.push(&row);
    }
    ds.minmax_normalize();
    ds
}

fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mu + sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_topk_temporal::DatasetStats;

    #[test]
    fn normalized_to_unit_interval() {
        let ds = network_like(20_000, 5);
        let st = DatasetStats::compute(&ds);
        for (j, c) in st.columns.iter().enumerate() {
            assert!(c.min >= 0.0 && c.max <= 1.0 + 1e-12, "col {j}: [{}, {}]", c.min, c.max);
        }
        assert_eq!(ds.dim(), NETWORK_DIM);
    }

    #[test]
    fn magnitude_columns_are_heavy_tailed() {
        let ds = network_like(30_000, 5);
        let st = DatasetStats::compute(&ds);
        // After MinMax, a heavy tail shows as a tiny mean relative to max=1.
        assert!(st.columns[1].mean < 0.05, "src_bytes mean {}", st.columns[1].mean);
    }

    #[test]
    fn bursts_exist() {
        let ds = network_like(200_000, 11);
        // The hosts column (4) should have contiguous stretches well above
        // the global mean.
        let st = DatasetStats::compute(&ds);
        let mean = st.columns[4].mean;
        let mut best_run = 0usize;
        let mut run = 0usize;
        for i in 0..ds.len() {
            if ds.value(i as u32, 4) > mean * 3.0 {
                run += 1;
                best_run = best_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(best_run >= 20, "expected a bursty episode, best run {best_run}");
    }

    #[test]
    fn skyband_explodes_with_dimension() {
        use durable_topk_geom::k_skyband;
        let ds = network_like(1_500, 9);
        let ids: Vec<u32> = (0..ds.len() as u32).collect();
        let low = k_skyband(&ds.project(&[0, 1]), &ids, 2).len();
        let high_dims: Vec<usize> = (0..20).collect();
        let high = k_skyband(&ds.project(&high_dims), &ids, 2).len();
        assert!(high > 5 * low, "20-d skyband ({high}) should dwarf 2-d skyband ({low})");
    }
}
