//! Random preference vectors for query workloads.
//!
//! The paper runs each measurement 100 times with 100 random preference
//! vectors and reports means with standard deviations; these helpers supply
//! the vectors.

use rand::prelude::*;

/// Draws a random non-negative preference vector of dimension `d`,
/// normalized to sum 1 (uniform over the positive orthant directionally).
///
/// # Panics
/// Panics if `d == 0`.
pub fn random_preference(d: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(d > 0, "dimension must be positive");
    loop {
        let mut u: Vec<f64> = (0..d).map(|_| rng.random::<f64>()).collect();
        let sum: f64 = u.iter().sum();
        if sum > 0.0 {
            for w in &mut u {
                *w /= sum;
            }
            return u;
        }
    }
}

/// A deterministic sequence of `count` preference vectors.
pub fn preference_suite(d: usize, count: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| random_preference(d, &mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preferences_are_normalized_and_nonnegative() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in [1usize, 2, 5, 37] {
            let u = random_preference(d, &mut rng);
            assert_eq!(u.len(), d);
            assert!(u.iter().all(|&w| w >= 0.0));
            assert!((u.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn suite_is_deterministic() {
        assert_eq!(preference_suite(3, 5, 9), preference_suite(3, 5, 9));
        assert_ne!(preference_suite(3, 5, 9), preference_suite(3, 5, 10));
    }
}
