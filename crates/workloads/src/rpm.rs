//! The random permutation model of Section V-A.
//!
//! An adversary picks `n` arbitrary values; the values are assigned to
//! arrival positions by a uniformly random permutation. Lemma 4 proves
//! `E[|S|] = k·|I|/(τ+1)` in this model regardless of the chosen values —
//! the experiment harness verifies that equality empirically.

use durable_topk_temporal::Dataset;
use rand::prelude::*;

/// Builds a single-attribute dataset by randomly permuting the given values
/// over arrival positions.
///
/// The `values` slice plays the adversary: pass any score profile (uniform,
/// exponential, constant-with-spikes, …). Values need not be distinct, but
/// Lemma 4's statement assumes distinctness — the harness uses strictly
/// increasing sequences.
///
/// # Panics
/// Panics if `values` is empty.
pub fn random_permutation_dataset(values: &[f64], seed: u64) -> Dataset {
    assert!(!values.is_empty(), "the adversary must choose at least one value");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..values.len()).collect();
    perm.shuffle(&mut rng);
    let mut ds = Dataset::with_capacity(1, values.len());
    for &i in &perm {
        ds.push(&[values[i]]);
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_preserves_multiset() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ds = random_permutation_dataset(&values, 9);
        let mut got: Vec<f64> = ds.iter().map(|r| r.attrs[0]).collect();
        got.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        assert_eq!(got, values);
    }

    #[test]
    fn different_seeds_differ() {
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = random_permutation_dataset(&values, 1);
        let b = random_permutation_dataset(&values, 2);
        assert_ne!(a.raw_attrs(), b.raw_attrs());
    }
}
