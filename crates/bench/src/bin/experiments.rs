//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage: `cargo run --release -p durable-topk-bench --bin experiments --
//! [all|fig1|fig7|fig8|fig9|fig10|fig11|fig12|fig13|tab4|tab5|tab6|lemma4|lemma5|ablation]
//! [--scale X] [--reps N] [--seed S]`
//!
//! Dataset sizes are laptop-scaled (see DESIGN.md); `--scale` multiplies
//! them. Numbers are means over `--reps` random preference vectors, as the
//! paper averages over 100 vectors.

use durable_topk::{
    alternatives, Algorithm, DurableQuery, DurableTopKEngine, LinearScorer, ScanOracle,
    SingleAttributeScorer, TopKOracle, Window,
};
use durable_topk_bench::{default_query, mean_std, measure, pm, query_pct, Config, TablePrinter};
use durable_topk_store::{t_base_proc, t_hop_proc, RelStore};
use durable_topk_temporal::{Dataset, DatasetStats, Time};
use durable_topk_workloads::{
    anti, ind, nba_attribute, nba_like, network_like, preference_suite, random_permutation_dataset,
};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut cfg = Config::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                cfg.scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--reps" => {
                cfg.reps = args[i + 1].parse().expect("--reps takes an integer");
                i += 2;
            }
            "--seed" => {
                cfg.seed = args[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            other => {
                which.push(other.to_string());
                i += 1;
            }
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    let all = which.iter().any(|w| w == "all");
    let want = |name: &str| all || which.iter().any(|w| w == name);

    println!("durable top-k experiment harness (scale={}, reps={})", cfg.scale, cfg.reps);
    if want("fig1") {
        fig1(&cfg);
    }
    if want("fig7") {
        fig7(&cfg);
    }
    if want("fig8") {
        fig8(&cfg);
    }
    if want("fig9") {
        fig9(&cfg);
    }
    if want("fig10") {
        fig10(&cfg);
    }
    if want("fig11") {
        fig11(&cfg);
    }
    if want("fig12") {
        fig12(&cfg);
    }
    if want("fig13") {
        fig13(&cfg);
    }
    if want("tab4") {
        tab4(&cfg);
    }
    if want("tab5") {
        tab5(&cfg);
    }
    if want("tab6") {
        tab6(&cfg);
    }
    if want("lemma4") {
        lemma4(&cfg);
    }
    if want("lemma5") {
        lemma5(&cfg);
    }
    if want("ablation") {
        ablation(&cfg);
    }
}

fn banner(title: &str) {
    println!("\n==== {title} ====");
}

fn nba_x(cfg: &Config, n: usize, attrs: &[&str]) -> Dataset {
    let cols: Vec<usize> = attrs.iter().map(|a| nba_attribute(a)).collect();
    nba_like(cfg.n(n), cfg.seed).project(&cols)
}

fn network_x(cfg: &Config, n: usize, d: usize) -> Dataset {
    let cols: Vec<usize> = (0..d).collect();
    network_like(cfg.n(n), cfg.seed).project(&cols)
}

/// Fig. 1: the case study — durable vs tumbling vs sliding top-1 rebounds.
fn fig1(cfg: &Config) {
    banner("Fig 1: durable vs tumbling vs sliding (NBA-like rebounds, k=1)");
    let ds = nba_x(cfg, 40_000, &["rebounds"]);
    let n = ds.len();
    let engine = DurableTopKEngine::new(ds);
    let scorer = SingleAttributeScorer::new(0);
    // "5-year window over 36 years of history"; the query interval starts
    // one window-length in so every claim spans a full 5 years of history.
    let tau = (n as f64 * 5.0 / 36.0) as Time;
    let interval = Window::new(tau, (n - 1) as Time);
    let query = DurableQuery { k: 1, tau, interval };

    let durable = engine.query(Algorithm::THop, &scorer, &query);
    let tumbling = alternatives::tumbling_topk(
        engine.dataset(),
        engine.oracle(),
        &scorer,
        1,
        interval,
        tau,
        0,
    );
    let shifted = alternatives::tumbling_topk(
        engine.dataset(),
        engine.oracle(),
        &scorer,
        1,
        interval,
        tau,
        tau / 2,
    );
    let sliding = alternatives::sliding_topk_union(
        engine.dataset(),
        engine.oracle(),
        &scorer,
        1,
        interval,
        tau,
    );
    let tumbling_ids: Vec<u32> = tumbling.iter().flat_map(|(_, v)| v.clone()).collect();
    let shifted_ids: Vec<u32> = shifted.iter().flat_map(|(_, v)| v.clone()).collect();
    println!(
        "answer sizes: durable={} tumbling={} tumbling(shifted)={} sliding-union={}",
        durable.records.len(),
        tumbling_ids.len(),
        shifted_ids.len(),
        sliding.len()
    );
    let moved = tumbling_ids.iter().filter(|id| !shifted_ids.contains(id)).count();
    println!(
        "tumbling placement sensitivity: {moved}/{} answers change when the grid shifts by tau/2",
        tumbling_ids.len()
    );
    println!(
        "sliding union is {:.1}x larger than the durable answer (hard to interpret)",
        sliding.len() as f64 / durable.records.len().max(1) as f64
    );
    for &id in durable.records.iter().take(5) {
        let (dur, _) = engine.max_duration(&scorer, id, 1);
        println!(
            "  record t={id}: {} rebounds, durable over the tau={} window (max duration {})",
            engine.dataset().value(id, 0),
            tau,
            dur
        );
    }
}

/// Fig. 7: synthetic data distributions.
fn fig7(cfg: &Config) {
    banner("Fig 7: IND / ANTI value distributions");
    let ind_ds = ind(cfg.n(50_000), 2, cfg.seed);
    let anti_ds = anti(cfg.n(50_000), cfg.seed);
    println!("IND:\n{}", DatasetStats::compute(&ind_ds));
    println!("ANTI:\n{}", DatasetStats::compute(&anti_ds));
}

fn alg_suite() -> [Algorithm; 5] {
    [Algorithm::TBase, Algorithm::THop, Algorithm::SBase, Algorithm::SBand, Algorithm::SHop]
}

fn sweep_table(
    title: &str,
    engine: &DurableTopKEngine,
    sweeps: &[(String, DurableQuery)],
    cfg: &Config,
) {
    banner(title);
    let mut time_t = TablePrinter::new(vec![
        "param".to_string(),
        "|S|".to_string(),
        "T-Base ms".to_string(),
        "T-Hop ms".to_string(),
        "S-Base ms".to_string(),
        "S-Band ms".to_string(),
        "S-Hop ms".to_string(),
    ]);
    let mut q_t = TablePrinter::new(vec![
        "param".to_string(),
        "T-Hop #topk".to_string(),
        "S-Band #topk".to_string(),
        "S-Hop #topk".to_string(),
        "S-Hop #checks".to_string(),
        "|C|".to_string(),
    ]);
    for (label, query) in sweeps {
        let ms: Vec<_> = alg_suite().iter().map(|&a| measure(engine, a, query, cfg)).collect();
        time_t.row(vec![
            label.clone(),
            format!("{:.0}", ms[0].answer_size),
            pm(ms[0].time_ms, ms[0].time_std),
            pm(ms[1].time_ms, ms[1].time_std),
            pm(ms[2].time_ms, ms[2].time_std),
            pm(ms[3].time_ms, ms[3].time_std),
            pm(ms[4].time_ms, ms[4].time_std),
        ]);
        q_t.row(vec![
            label.clone(),
            format!("{:.0}", ms[1].topk_queries),
            format!("{:.0}", ms[3].topk_queries),
            format!("{:.0}", ms[4].topk_queries),
            format!("{:.0}", ms[4].durability_checks),
            format!("{:.0}", ms[3].candidates),
        ]);
    }
    println!("(a) query time\n{}", time_t.render());
    println!("(b) top-k building-block invocations\n{}", q_t.render());
}

/// Fig. 8: vary τ on NBA-2 and Network-2.
fn fig8(cfg: &Config) {
    for (name, ds) in [
        ("NBA-2", nba_x(cfg, 150_000, &["points", "assists"])),
        ("Network-2", network_x(cfg, 200_000, 2)),
    ] {
        let n = ds.len();
        let engine = DurableTopKEngine::new(ds).with_skyband_index(64);
        let sweeps: Vec<(String, DurableQuery)> =
            [0.01, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50]
                .iter()
                .map(|&p| (format!("tau={:.0}%", p * 100.0), query_pct(n, 10, p, 0.50)))
                .collect();
        sweep_table(&format!("Fig 8 ({name}, n={n}): vary tau"), &engine, &sweeps, cfg);
    }
}

/// Fig. 9: vary k.
fn fig9(cfg: &Config) {
    for (name, ds) in [
        ("NBA-2", nba_x(cfg, 150_000, &["points", "assists"])),
        ("Network-2", network_x(cfg, 200_000, 2)),
    ] {
        let n = ds.len();
        let engine = DurableTopKEngine::new(ds).with_skyband_index(64);
        let sweeps: Vec<(String, DurableQuery)> = (1..=10)
            .map(|m| {
                let k = 5 * m;
                (format!("k={k}"), query_pct(n, k, 0.10, 0.50))
            })
            .collect();
        sweep_table(&format!("Fig 9 ({name}, n={n}): vary k"), &engine, &sweeps, cfg);
    }
}

/// Fig. 10: vary |I|.
fn fig10(cfg: &Config) {
    for (name, ds) in [
        ("NBA-2", nba_x(cfg, 150_000, &["points", "assists"])),
        ("Network-2", network_x(cfg, 200_000, 2)),
    ] {
        let n = ds.len();
        let engine = DurableTopKEngine::new(ds).with_skyband_index(64);
        let sweeps: Vec<(String, DurableQuery)> = [0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80]
            .iter()
            .map(|&p| (format!("|I|={:.0}%", p * 100.0), query_pct(n, 10, 0.10, p)))
            .collect();
        sweep_table(&format!("Fig 10 ({name}, n={n}): vary |I|"), &engine, &sweeps, cfg);
    }
}

/// Fig. 11: vary dimensionality on Network-X.
fn fig11(cfg: &Config) {
    banner("Fig 11: vary d (Network-X)");
    let base = network_like(cfg.n(50_000), cfg.seed);
    let mut time_t =
        TablePrinter::new(vec!["d", "|S|", "T-Base ms", "T-Hop ms", "S-Band ms", "S-Hop ms"]);
    let mut q_t = TablePrinter::new(vec!["d", "T-Hop #topk", "S-Band #topk", "S-Hop #topk", "|C|"]);
    for d in [1usize, 2, 3, 5, 10, 20, 30, 37] {
        let cols: Vec<usize> = (0..d).collect();
        let ds = base.project(&cols);
        let n = ds.len();
        let build = Instant::now();
        let engine = DurableTopKEngine::new(ds).with_skyband_index(16);
        let build_s = build.elapsed().as_secs_f64();
        let q = default_query(n);
        let algs = [Algorithm::TBase, Algorithm::THop, Algorithm::SBand, Algorithm::SHop];
        let ms: Vec<_> = algs.iter().map(|&a| measure(&engine, a, &q, cfg)).collect();
        time_t.row(vec![
            format!("{d}"),
            format!("{:.0}", ms[1].answer_size),
            pm(ms[0].time_ms, ms[0].time_std),
            pm(ms[1].time_ms, ms[1].time_std),
            pm(ms[2].time_ms, ms[2].time_std),
            pm(ms[3].time_ms, ms[3].time_std),
        ]);
        q_t.row(vec![
            format!("{d}"),
            format!("{:.0}", ms[1].topk_queries),
            format!("{:.0}", ms[2].topk_queries),
            format!("{:.0}", ms[3].topk_queries),
            format!("{:.0}", ms[2].candidates),
        ]);
        eprintln!("  [fig11] d={d} built in {build_s:.1}s");
    }
    println!("(1) query time\n{}", time_t.render());
    println!("(2) top-k invocations and |C|\n{}", q_t.render());
}

/// Fig. 12: scalability on IND and ANTI.
fn fig12(cfg: &Config) {
    for dist in ["IND", "ANTI"] {
        banner(&format!("Fig 12 ({dist}): scalability"));
        let mut time_t =
            TablePrinter::new(vec!["n", "|S|", "S-Base ms", "T-Hop ms", "S-Band ms", "S-Hop ms"]);
        let mut q_t =
            TablePrinter::new(vec!["n", "T-Hop #topk", "S-Band #topk", "S-Hop #topk", "|C|"]);
        for base in [50_000usize, 100_000, 200_000, 400_000, 800_000] {
            let n = cfg.n(base);
            let ds = if dist == "IND" { ind(n, 2, cfg.seed) } else { anti(n, cfg.seed) };
            let build = Instant::now();
            let engine = DurableTopKEngine::new(ds).with_skyband_index(16);
            let build_s = build.elapsed().as_secs_f64();
            // The paper grows |I| proportionally with n (fixed percentage).
            let q = default_query(n);
            let algs = [Algorithm::SBase, Algorithm::THop, Algorithm::SBand, Algorithm::SHop];
            let ms: Vec<_> = algs.iter().map(|&a| measure(&engine, a, &q, cfg)).collect();
            time_t.row(vec![
                format!("{n}"),
                format!("{:.0}", ms[1].answer_size),
                pm(ms[0].time_ms, ms[0].time_std),
                pm(ms[1].time_ms, ms[1].time_std),
                pm(ms[2].time_ms, ms[2].time_std),
                pm(ms[3].time_ms, ms[3].time_std),
            ]);
            q_t.row(vec![
                format!("{n}"),
                format!("{:.0}", ms[1].topk_queries),
                format!("{:.0}", ms[2].topk_queries),
                format!("{:.0}", ms[3].topk_queries),
                format!("{:.0}", ms[2].candidates),
            ]);
            eprintln!("  [fig12 {dist}] n={n} built in {build_s:.1}s");
        }
        println!("(a) query time\n{}", time_t.render());
        println!("(b) top-k invocations and |C|\n{}", q_t.render());
    }
}

/// Fig. 13: runtime distribution over 20 random 5-d NBA attribute subsets.
fn fig13(cfg: &Config) {
    banner("Fig 13: runtime distribution over 20 random 5-d NBA subsets");
    use rand::prelude::*;
    let full = nba_like(cfg.n(40_000), cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xf13);
    let mut samples: Vec<(Algorithm, Vec<f64>)> = vec![
        (Algorithm::THop, Vec::new()),
        (Algorithm::SHop, Vec::new()),
        (Algorithm::SBand, Vec::new()),
    ];
    for subset in 0..20 {
        let mut cols: Vec<usize> = (0..15).collect();
        cols.shuffle(&mut rng);
        cols.truncate(5);
        let ds = full.project(&cols);
        let n = ds.len();
        let engine = DurableTopKEngine::new(ds).with_skyband_index(16);
        let q = default_query(n);
        for (alg, times) in &mut samples {
            let m = measure(&engine, *alg, &q, cfg);
            times.push(m.time_ms);
        }
        eprintln!("  [fig13] subset {subset} cols {cols:?} done");
    }
    let mut t = TablePrinter::new(vec!["alg", "min", "q1", "median", "q3", "max", "mean"]);
    for (alg, mut times) in samples {
        times.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let quant = |p: f64| times[((times.len() - 1) as f64 * p).round() as usize];
        let (mean, _) = mean_std(&times);
        t.row(vec![
            alg.name().to_string(),
            format!("{:.2}", quant(0.0)),
            format!("{:.2}", quant(0.25)),
            format!("{:.2}", quant(0.5)),
            format!("{:.2}", quant(0.75)),
            format!("{:.2}", quant(1.0)),
            format!("{mean:.2}"),
        ]);
    }
    println!("{}", t.render());
}

fn store_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("durable-topk-experiments");
    std::fs::create_dir_all(&dir).expect("mk tmpdir");
    dir.join(name)
}

fn store_sweep(
    title: &str,
    store: &mut RelStore,
    scorer: &LinearScorer,
    sweeps: &[(String, Window, Time)],
) {
    banner(title);
    let mut t = TablePrinter::new(vec![
        "param",
        "T-Hop s",
        "T-Base s",
        "speedup",
        "T-Hop misses",
        "T-Base misses",
    ]);
    for (label, interval, tau) in sweeps {
        store.clear_cache().expect("cold cache");
        let start = Instant::now();
        let (a, hop) = t_hop_proc(store, scorer, 10, *interval, *tau).expect("t-hop");
        let hop_s = start.elapsed().as_secs_f64();
        store.clear_cache().expect("cold cache");
        let start = Instant::now();
        let (b, base) = t_base_proc(store, scorer, 10, *interval, *tau).expect("t-base");
        let base_s = start.elapsed().as_secs_f64();
        assert_eq!(a, b, "stored procedures disagree");
        t.row(vec![
            label.clone(),
            format!("{hop_s:.3}"),
            format!("{base_s:.3}"),
            format!("{:.1}x", base_s / hop_s.max(1e-9)),
            format!("{}", hop.io.misses),
            format!("{}", base.io.misses),
        ]);
    }
    println!("{}", t.render());
}

/// Table IV: DBMS backend, vary τ on NBA-2.
fn tab4(cfg: &Config) {
    let ds = nba_x(cfg, 200_000, &["points", "assists"]);
    let n = ds.len();
    // Pool deliberately small relative to the data (the paper's server
    // reads 30 GB through a bounded buffer cache): 64 pages = 512 KiB.
    let mut store = RelStore::create(store_path("tab4.db"), &ds, 128, 64).expect("create store");
    let scorer = LinearScorer::uniform(2);
    let sweeps: Vec<(String, Window, Time)> = [0.10, 0.20, 0.30, 0.40, 0.50]
        .iter()
        .map(|&p| {
            let q = query_pct(n, 10, p, 0.50);
            (format!("tau={:.0}%", p * 100.0), q.interval, q.tau)
        })
        .collect();
    store_sweep(&format!("Table IV (stored NBA-2, n={n}): vary tau"), &mut store, &scorer, &sweeps);
}

/// Table V: DBMS backend, vary |I| on NBA-2.
fn tab5(cfg: &Config) {
    let ds = nba_x(cfg, 200_000, &["points", "assists"]);
    let n = ds.len();
    let mut store = RelStore::create(store_path("tab5.db"), &ds, 128, 64).expect("create store");
    let scorer = LinearScorer::uniform(2);
    let sweeps: Vec<(String, Window, Time)> = [0.10, 0.20, 0.30, 0.40, 0.50]
        .iter()
        .map(|&p| {
            let q = query_pct(n, 10, 0.10, p);
            (format!("|I|={:.0}%", p * 100.0), q.interval, q.tau)
        })
        .collect();
    store_sweep(&format!("Table V (stored NBA-2, n={n}): vary |I|"), &mut store, &scorer, &sweeps);
}

/// Table VI: DBMS backend at scale (paper: 500M rows / 30 GB; scaled here).
fn tab6(cfg: &Config) {
    banner("Table VI: stored backend at scale");
    let mut t = TablePrinter::new(vec!["dataset", "rows", "T-Hop s", "T-Base s", "speedup"]);
    let datasets: Vec<(&str, Dataset)> = vec![
        ("NBA-2", nba_x(cfg, 100_000, &["points", "assists"])),
        ("Syn-IND", ind(cfg.n(2_000_000), 2, cfg.seed)),
        ("Syn-ANTI", anti(cfg.n(2_000_000), cfg.seed)),
    ];
    for (name, ds) in datasets {
        let n = ds.len();
        let mut store = RelStore::create(store_path(&format!("tab6-{name}.db")), &ds, 128, 256)
            .expect("create store");
        let scorer = LinearScorer::uniform(2);
        let q = default_query(n);
        store.clear_cache().expect("cold cache");
        let start = Instant::now();
        let (a, _) = t_hop_proc(&mut store, &scorer, q.k, q.interval, q.tau).expect("t-hop");
        let hop_s = start.elapsed().as_secs_f64();
        store.clear_cache().expect("cold cache");
        let start = Instant::now();
        let (b, _) = t_base_proc(&mut store, &scorer, q.k, q.interval, q.tau).expect("t-base");
        let base_s = start.elapsed().as_secs_f64();
        assert_eq!(a, b);
        t.row(vec![
            name.to_string(),
            format!("{n}"),
            format!("{hop_s:.3}"),
            format!("{base_s:.3}"),
            format!("{:.1}x", base_s / hop_s.max(1e-9)),
        ]);
        eprintln!("  [tab6] {name} done");
    }
    println!("{}", t.render());
}

/// Lemma 4: E[|S|] = k·|I|/(τ+1) under the random permutation model.
fn lemma4(cfg: &Config) {
    banner("Lemma 4: expected answer size under the random permutation model");
    let n = cfg.n(100_000);
    // Adversarial value profile: exponentially spaced (any profile works).
    let values: Vec<f64> = (0..n).map(|i| (i as f64).powf(1.7)).collect();
    let mut t = TablePrinter::new(vec!["k", "tau", "|I|", "E[|S|] pred", "|S| measured", "ratio"]);
    for &k in &[1usize, 5, 10, 25] {
        for &tau_pct in &[0.05f64, 0.10, 0.25] {
            let q = query_pct(n, k, tau_pct, 0.50);
            let trials = cfg.reps.max(3);
            let mut sizes = Vec::with_capacity(trials);
            for trial in 0..trials {
                let ds = random_permutation_dataset(&values, cfg.seed + trial as u64);
                let engine = DurableTopKEngine::new(ds);
                let scorer = SingleAttributeScorer::new(0);
                let r = engine.query(Algorithm::THop, &scorer, &q);
                sizes.push(r.records.len() as f64);
            }
            let (measured, _) = mean_std(&sizes);
            let predicted = k as f64 * q.interval.len() as f64 / (q.tau as f64 + 1.0);
            t.row(vec![
                format!("{k}"),
                format!("{}", q.tau),
                format!("{}", q.interval.len()),
                format!("{predicted:.1}"),
                format!("{measured:.1}"),
                format!("{:.3}", measured / predicted),
            ]);
        }
    }
    println!("{}", t.render());
}

/// Lemma 5: E[|C|] = O(k·|I|/τ · log^{d-1} τ) on random data.
fn lemma5(cfg: &Config) {
    banner("Lemma 5: expected durable k-skyband size on IND data");
    let mut t = TablePrinter::new(vec![
        "d",
        "tau",
        "|C| measured",
        "k|I|/tau",
        "|C|/(k|I|/tau)",
        "log^{d-1} tau",
    ]);
    for &d in &[2usize, 3, 4] {
        let n = cfg.n(30_000);
        let ds = ind(n, d, cfg.seed);
        let engine = DurableTopKEngine::new(ds).with_skyband_index(16);
        for &tau_pct in &[0.05f64, 0.10, 0.25] {
            let q = query_pct(n, 10, tau_pct, 0.50);
            let idx = engine.skyband_index().expect("built");
            let c = idx.candidate_count(q.interval, q.tau, q.k) as f64;
            let base = q.k as f64 * q.interval.len() as f64 / q.tau as f64;
            let logs = (q.tau as f64).ln().powi(d as i32 - 1);
            t.row(vec![
                format!("{d}"),
                format!("{}", q.tau),
                format!("{c:.0}"),
                format!("{base:.1}"),
                format!("{:.2}", c / base),
                format!("{logs:.1}"),
            ]);
        }
    }
    println!("{}", t.render());
}

/// Ablations: leaf size, S-Hop refill mode, oracle choice.
fn ablation(cfg: &Config) {
    banner("Ablation A: oracle LENGTH_THRESHOLD (leaf size)");
    let ds = nba_x(cfg, 100_000, &["points", "assists"]);
    let n = ds.len();
    let q = default_query(n);
    let mut t = TablePrinter::new(vec!["leaf", "T-Hop ms", "S-Hop ms"]);
    for leaf in [16usize, 64, 128, 512, 2048] {
        let engine = DurableTopKEngine::with_leaf_size(ds.clone(), leaf);
        let a = measure(&engine, Algorithm::THop, &q, cfg);
        let b = measure(&engine, Algorithm::SHop, &q, cfg);
        t.row(vec![format!("{leaf}"), pm(a.time_ms, a.time_std), pm(b.time_ms, b.time_std)]);
    }
    println!("{}", t.render());

    banner("Ablation B: S-Hop refill mode (Algorithm 3 vs footnote-5 top-1 variant)");
    let engine = DurableTopKEngine::new(ds.clone());
    let mut t = TablePrinter::new(vec!["mode", "ms", "#topk", "#checks"]);
    for alg in [Algorithm::SHop, Algorithm::SHopTop1] {
        let m = measure(&engine, alg, &q, cfg);
        t.row(vec![
            alg.name().to_string(),
            pm(m.time_ms, m.time_std),
            format!("{:.0}", m.topk_queries),
            format!("{:.0}", m.durability_checks),
        ]);
    }
    println!("{}", t.render());

    banner("Ablation C: building-block choice — T-Hop with tree vs scan oracle");
    let small = nba_x(cfg, 20_000, &["points", "assists"]);
    let ns = small.len();
    let qs = default_query(ns);
    let engine = DurableTopKEngine::new(small.clone());
    let scan = ScanOracle::new();
    let vectors = preference_suite(2, cfg.reps, cfg.seed);
    let mut tree_ms = Vec::new();
    let mut scan_ms = Vec::new();
    for u in vectors {
        let scorer = LinearScorer::new(u);
        let s = Instant::now();
        let a = engine.query(Algorithm::THop, &scorer, &qs);
        tree_ms.push(s.elapsed().as_secs_f64() * 1e3);
        let s = Instant::now();
        let b = durable_topk::algorithms::t_hop(
            &small,
            &scan,
            &scorer,
            &qs,
            &mut durable_topk::QueryContext::new(),
        );
        scan_ms.push(s.elapsed().as_secs_f64() * 1e3);
        assert_eq!(a.records, b.records);
    }
    let (tm, ts) = mean_std(&tree_ms);
    let (sm, ss) = mean_std(&scan_ms);
    println!("tree oracle: {} ms   scan oracle: {} ms", pm(tm, ts), pm(sm, ss));
    let _ = scan.queries_issued();
}
