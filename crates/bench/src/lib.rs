//! Shared harness for the evaluation experiments (Figs. 1–13, Tables IV–VI).
//!
//! The `experiments` binary regenerates every table and figure series from
//! the paper's Section VI; this library holds the measurement plumbing:
//! dataset construction at laptop-scaled sizes, repeated timed runs over
//! random preference vectors (the paper uses 100 vectors per setting), and
//! aligned text tables.

use durable_topk::{
    Algorithm, DurableQuery, DurableTopKEngine, LinearScorer, QueryContext, Window,
};
use durable_topk_temporal::Time;
use durable_topk_workloads::preference_suite;
use std::time::Instant;

/// Scale factor applied to every default dataset size. `1.0` targets a
/// laptop run of a few minutes for `all`.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Multiplies default dataset sizes.
    pub scale: f64,
    /// Preference vectors per measurement (paper: 100).
    pub reps: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self { scale: 1.0, reps: 5, seed: 42 }
    }
}

impl Config {
    /// Scales a default size.
    pub fn n(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(64)
    }
}

/// Mean and population standard deviation of a sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// One measured algorithm run, averaged over preference vectors.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Algorithm measured.
    pub alg: Algorithm,
    /// Mean wall time in milliseconds.
    pub time_ms: f64,
    /// Standard deviation of wall time.
    pub time_std: f64,
    /// Mean number of top-k building-block queries.
    pub topk_queries: f64,
    /// Mean durability checks (subset of `topk_queries`).
    pub durability_checks: f64,
    /// Mean candidate-set size (|C| for S-Band).
    pub candidates: f64,
    /// Mean answer size |S|.
    pub answer_size: f64,
}

/// Times `alg` on `engine` across the configured preference vectors.
pub fn measure(
    engine: &DurableTopKEngine,
    alg: Algorithm,
    query: &DurableQuery,
    cfg: &Config,
) -> Measurement {
    let d = engine.dataset().dim();
    let vectors = preference_suite(d, cfg.reps, cfg.seed);
    let mut times = Vec::with_capacity(vectors.len());
    let mut queries = Vec::with_capacity(vectors.len());
    let mut checks = Vec::with_capacity(vectors.len());
    let mut cands = Vec::with_capacity(vectors.len());
    let mut answers = Vec::with_capacity(vectors.len());
    // One context for the whole measurement: the steady-state (allocation
    // free) regime production callers see.
    let mut ctx = QueryContext::new();
    for u in vectors {
        let scorer = LinearScorer::new(u);
        let start = Instant::now();
        let result = engine.query_with(alg, &scorer, query, &mut ctx);
        times.push(start.elapsed().as_secs_f64() * 1e3);
        queries.push(result.stats.topk_queries() as f64);
        checks.push(result.stats.durability_checks as f64);
        cands.push(result.stats.candidates as f64);
        answers.push(result.records.len() as f64);
    }
    let (time_ms, time_std) = mean_std(&times);
    Measurement {
        alg,
        time_ms,
        time_std,
        topk_queries: mean_std(&queries).0,
        durability_checks: mean_std(&checks).0,
        candidates: mean_std(&cands).0,
        answer_size: mean_std(&answers).0,
    }
}

/// Builds the default query (paper Table III bold defaults, see DESIGN.md):
/// `k = 10`, `τ = 10%` of the domain, `|I| = 50%` anchored at the most
/// recent timestamp.
pub fn default_query(n: usize) -> DurableQuery {
    query_pct(n, 10, 0.10, 0.50)
}

/// A query with τ and |I| given as fractions of the domain, interval
/// anchored at the most recent timestamp (as the paper fixes it).
pub fn query_pct(n: usize, k: usize, tau_pct: f64, interval_pct: f64) -> DurableQuery {
    let n = n as Time;
    let tau = ((n as f64 * tau_pct) as Time).max(1);
    let ilen = ((n as f64 * interval_pct) as Time).max(1);
    DurableQuery { k, tau, interval: Window::new(n - ilen, n - 1) }
}

/// Aligned text-table printer for experiment output.
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// `format!`-ready `mean±std` cell.
pub fn pm(mean: f64, std: f64) -> String {
    if mean >= 100.0 {
        format!("{mean:.0}±{std:.0}")
    } else if mean >= 1.0 {
        format!("{mean:.2}±{std:.2}")
    } else {
        format!("{mean:.3}±{std:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_topk_temporal::Dataset;

    #[test]
    fn mean_std_of_known_values() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn query_pct_shapes() {
        let q = query_pct(1000, 10, 0.10, 0.50);
        assert_eq!(q.tau, 100);
        assert_eq!(q.interval, Window::new(500, 999));
        assert_eq!(q.k, 10);
    }

    #[test]
    fn measure_reports_consistent_answer_sizes() {
        let ds = Dataset::from_rows(
            2,
            (0..500).map(|i| [((i * 13) % 97) as f64, ((i * 29) % 89) as f64]),
        );
        let engine = DurableTopKEngine::new(ds).with_skyband_index(16);
        let cfg = Config { reps: 3, ..Default::default() };
        let q = default_query(500);
        let a = measure(&engine, Algorithm::THop, &q, &cfg);
        let b = measure(&engine, Algorithm::SHop, &q, &cfg);
        let c = measure(&engine, Algorithm::SBand, &q, &cfg);
        assert_eq!(a.answer_size, b.answer_size);
        assert_eq!(a.answer_size, c.answer_size);
        assert!(c.candidates >= c.answer_size, "C is a superset of S");
    }

    #[test]
    fn table_printer_aligns() {
        let mut t = TablePrinter::new(vec!["a", "bbbb"]);
        t.row(vec!["1", "2"]);
        let s = t.render();
        assert!(s.contains("a  bbbb"));
        assert!(s.lines().count() == 3);
    }
}
