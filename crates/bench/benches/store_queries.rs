//! Criterion micro-bench for the Table IV–VI family: stored procedures.

use criterion::{criterion_group, criterion_main, Criterion};
use durable_topk::LinearScorer;
use durable_topk_bench::default_query;
use durable_topk_store::{t_base_proc, t_hop_proc, RelStore};
use durable_topk_workloads::ind;

fn bench(c: &mut Criterion) {
    let n = 60_000;
    let ds = ind(n, 2, 42);
    let dir = std::env::temp_dir().join("durable-topk-bench");
    std::fs::create_dir_all(&dir).expect("mk tmpdir");
    let mut store = RelStore::create(dir.join("bench.db"), &ds, 128, 256).expect("create");
    let scorer = LinearScorer::uniform(2);
    let q = default_query(n);
    let mut g = c.benchmark_group("store_procedures");
    g.sample_size(10);
    g.bench_function("t_hop_proc", |b| {
        b.iter(|| t_hop_proc(&mut store, &scorer, q.k, q.interval, q.tau).expect("ok"))
    });
    g.bench_function("t_base_proc", |b| {
        b.iter(|| t_base_proc(&mut store, &scorer, q.k, q.interval, q.tau).expect("ok"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
