//! Storage-tier bench: hot vs cold query latency and resident-set size.
//!
//! Two live engines ingest the same 20k-record stream; one keeps every
//! sealed chunk resident (`MemoryStorage`), the other spills all but the
//! newest two to pager-backed pages (`PagedStorage`). The criterion group
//! then queries the *oldest* interval — resident on the memory backend,
//! spilled on the paged one — so `query_cold_paged ÷ query_hot_memory` is
//! the cold-tier premium a query pays to fault and decode its chunks.
//! `query_warm_paged` hits the newest (still-resident) interval, showing
//! the paged backend matches the memory path when no fault occurs.
//!
//! Before the group runs, the harness prints a one-shot resident-set
//! report: raw dataset bytes, each backend's `resident_bytes()`, and the
//! spill counters — the numbers BENCHMARKS.md's storage table records.
//! The dataset-bytes line doubles as the dedup measurement: before the
//! shared-`Arc` chunk refactor, a `StreamingMonitor` held a second full
//! copy of the history next to the engine's, so its resident set was
//! `2 × dataset` even before index overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use durable_topk::{
    Algorithm, Dataset, DurableQuery, EngineConfig, LinearScorer, PagedStorage, ShardedEngine,
    Window,
};
use durable_topk_workloads::ind;
use std::sync::Arc;

const N: usize = 20_000;
const SPAN: usize = 2_048;
const MAX_TAU: u32 = 256;
/// Sealed chunks the paged backend keeps resident.
const SPILL_AFTER: usize = 2;

/// Ingests the whole stream into a live engine over the given backend.
fn grow(ds: &Dataset, paged: bool) -> ShardedEngine {
    let mut config = EngineConfig::new(2, SPAN, MAX_TAU);
    if paged {
        config = config.storage(Arc::new(
            PagedStorage::with_temp_file(SPILL_AFTER).expect("temp-file backend"),
        ));
    }
    let mut live = config.build().expect("live config");
    for id in 0..ds.len() as u32 {
        live.append(ds.row(id));
    }
    live.quiesce();
    live
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn bench(c: &mut Criterion) {
    let ds = ind(N, 2, 7);
    let memory = grow(&ds, false);
    let paged = grow(&ds, true);
    let scorer = LinearScorer::uniform(2);

    let mem_stats = memory.storage().stats();
    let paged_stats = paged.storage().stats();
    eprintln!(
        "resident set over {N} records: dataset={:.2} MiB (a pre-dedup StreamingMonitor held \
         2x this); memory backend={:.2} MiB ({} chunks, all resident); paged backend \
         (spill_after={SPILL_AFTER})={:.2} MiB ({} of {} chunks spilled)",
        mib(ds.heap_bytes()),
        mib(memory.storage().resident_bytes()),
        mem_stats.chunks,
        mib(paged.storage().resident_bytes()),
        paged_stats.spilled_chunks,
        paged_stats.chunks,
    );

    // The oldest chunks: resident on the memory backend, spilled on the
    // paged one — the same query is hot there and cold here. Cold stays
    // cold across iterations because faulted chunks are decoded per fetch,
    // not re-admitted to the resident tier.
    let old = DurableQuery { k: 5, tau: MAX_TAU, interval: Window::new(0, (2 * SPAN - 1) as u32) };
    let new = DurableQuery {
        k: 5,
        tau: MAX_TAU,
        interval: Window::new((N - 2 * SPAN) as u32, (N - 1) as u32),
    };

    let mut g = c.benchmark_group("storage");
    g.sample_size(20);

    g.bench_function("query_hot_memory", |b| {
        b.iter(|| memory.query(Algorithm::SHop, &scorer, &old).records.len())
    });
    g.bench_function("query_cold_paged", |b| {
        b.iter(|| paged.query(Algorithm::SHop, &scorer, &old).records.len())
    });
    g.bench_function("query_warm_paged", |b| {
        b.iter(|| paged.query(Algorithm::SHop, &scorer, &new).records.len())
    });

    g.finish();

    let after = paged.storage().stats();
    eprintln!(
        "paged backend after the group: {} fetches ({} cold), {} cold page reads",
        after.fetches, after.cold_fetches, after.cold_page_reads,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
