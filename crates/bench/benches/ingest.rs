//! Ingestion-throughput bench for the live `ShardedEngine`.
//!
//! `append` measures pure arrival cost (amortized forest maintenance plus
//! periodic shard sealing); `append_query` the realistic interleaved
//! regime of a monitoring deployment; `rebuild_query` the from-scratch
//! alternative the incremental path replaces (rebuild the sharded engine
//! at every checkpoint); and `query_pool` steady-state query latency
//! through the persistent worker pool on a sealed engine.

use criterion::{criterion_group, criterion_main, Criterion};
use durable_topk::{Algorithm, Dataset, DurableQuery, LinearScorer, ShardedEngine, Window};
use durable_topk_workloads::ind;

const N: usize = 20_000;
const SPAN: usize = 4_096;
const MAX_TAU: u32 = 512;
/// Query cadence of the interleaved series: a monitoring deployment
/// queries far more often than the history doubles, which is exactly the
/// regime where rebuilding from scratch loses to incremental ingestion.
const CHECKPOINT: u32 = 500;

fn checkpoint_query(id: u32) -> DurableQuery {
    DurableQuery { k: 5, tau: 256, interval: Window::new(0, id) }
}

fn bench(c: &mut Criterion) {
    let ds = ind(N, 2, 7);
    let scorer = LinearScorer::uniform(2);
    let mut g = c.benchmark_group("ingest");
    g.sample_size(10);

    g.bench_function("append_20k", |b| {
        b.iter(|| {
            let mut live = ShardedEngine::new_live(2, SPAN, MAX_TAU);
            for id in 0..N as u32 {
                live.append(ds.row(id));
            }
            live.len()
        })
    });

    g.bench_function("append_20k_query_every_500", |b| {
        b.iter(|| {
            let mut live = ShardedEngine::new_live(2, SPAN, MAX_TAU);
            let mut durable = 0usize;
            for id in 0..N as u32 {
                live.append(ds.row(id));
                if (id + 1) % CHECKPOINT == 0 {
                    durable +=
                        live.query(Algorithm::THop, &scorer, &checkpoint_query(id)).records.len();
                }
            }
            durable
        })
    });

    g.bench_function("rebuild_20k_query_every_500", |b| {
        b.iter(|| {
            let mut prefix = Dataset::new(2);
            let mut durable = 0usize;
            for id in 0..N as u32 {
                prefix.push(ds.row(id));
                if (id + 1) % CHECKPOINT == 0 {
                    let built = ShardedEngine::build(&prefix, prefix.len().div_ceil(SPAN), MAX_TAU)
                        .expect("build");
                    durable +=
                        built.query(Algorithm::THop, &scorer, &checkpoint_query(id)).records.len();
                }
            }
            durable
        })
    });

    let sealed = ShardedEngine::build(&ds, N.div_ceil(SPAN), MAX_TAU).expect("build");
    let q = DurableQuery { k: 5, tau: 256, interval: Window::new(0, N as u32 - 1) };
    g.bench_function("sharded_query_pool", |b| {
        b.iter(|| sealed.query(Algorithm::THop, &scorer, &q).records.len())
    });

    // Batch fan-out through the pool (was: scoped spawns per batch).
    let engine = durable_topk::DurableTopKEngine::new(ds.clone());
    let scorers: Vec<LinearScorer> =
        (1..=8).map(|i| LinearScorer::new(vec![i as f64, (9 - i) as f64])).collect();
    let executor = durable_topk::BatchExecutor::new(4);
    g.bench_function("batch_run_8_scorers", |b| {
        b.iter(|| executor.run(&engine, Algorithm::THop, &scorers, &q).len())
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
