//! Serving-layer bench: request-queue throughput and seal tail latency.
//!
//! `serve_queue_64req` pushes a mixed 64-request workload through the
//! bounded queue onto the persistent worker pool and waits for every
//! completion handle (ns/iter ÷ 64 = per-request serving cost);
//! `direct_64req` runs the identical workload as plain sequential
//! `ShardedEngine::query` calls — the queue's overhead is the difference.
//! `append_cross_seal_{background,sync}` measure a fresh live engine
//! ingesting one full shard span plus one record (exactly one seal
//! hand-off) under each [`SealMode`].
//!
//! Before the criterion groups run, the harness prints one-shot p50/p99
//! serving latencies and per-append seal tail latencies (p50/p999/max) —
//! the numbers BENCHMARKS.md records, which adaptive ns/iter means cannot
//! show.

use criterion::{criterion_group, criterion_main, Criterion};
use durable_topk::{
    Algorithm, Backpressure, DurableQuery, EngineConfig, ScorerSpec, SealMode, ServeEngine,
    ServeRequest, ShardedEngine, Window,
};
use durable_topk_workloads::ind;
use std::time::{Duration, Instant};

const N: usize = 20_000;
const SPAN: usize = 4_096;
const MAX_TAU: u32 = 512;

/// The mixed workload: algorithms cycled, k/τ/interval varied.
fn request(i: usize, n: u32) -> ServeRequest {
    let algs = [Algorithm::THop, Algorithm::SHop, Algorithm::TBase, Algorithm::SBase];
    let b = (i as u32).wrapping_mul(7919) % n;
    let a = b.saturating_sub(1 + (i as u32).wrapping_mul(104_729) % n);
    ServeRequest {
        alg: algs[i % algs.len()],
        query: DurableQuery {
            k: 1 + i % 5,
            tau: 1 + (i as u32).wrapping_mul(31) % MAX_TAU,
            interval: Window::new(a, b),
        },
        scorer: ScorerSpec::Uniform,
    }
}

/// p-th percentile of a sorted latency list.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One-shot serving-latency distribution: 512 requests through the queue.
fn report_serving_percentiles(serve: &ServeEngine, n: u32) {
    let handles: Vec<_> =
        (0..512).map(|i| serve.submit(request(i, n)).expect("accepted")).collect();
    let mut lat: Vec<Duration> = handles
        .into_iter()
        .map(|h| {
            let r = h.wait().expect("served");
            r.queued + r.service
        })
        .collect();
    lat.sort_unstable();
    eprintln!(
        "serving latency over 512 queued requests: p50={:.2?} p99={:.2?} max={:.2?}",
        percentile(&lat, 0.50),
        percentile(&lat, 0.99),
        lat[lat.len() - 1],
    );
}

/// One-shot per-append latency distribution across several seal
/// boundaries under the given mode. Seal-triggering appends (global id
/// `k·span − 1`) are reported separately: they are the appends the
/// background hand-off is meant to flatten, while the forest's own
/// binary-counter merge spikes affect both modes identically.
fn report_seal_tail(mode: SealMode) {
    let rows = ind(4 * SPAN + 64, 2, 11);
    let mut live =
        EngineConfig::new(2, SPAN, MAX_TAU).seal_mode(mode).build().expect("live config");
    let mut lat = Vec::with_capacity(rows.len());
    let mut seal_lat = Vec::new();
    for id in 0..rows.len() as u32 {
        let t = Instant::now();
        live.append(rows.row(id));
        let elapsed = t.elapsed();
        lat.push(elapsed);
        if (id as usize + 1) % SPAN == 0 {
            seal_lat.push(elapsed);
        }
    }
    live.quiesce();
    lat.sort_unstable();
    seal_lat.sort_unstable();
    eprintln!(
        "append latency ({mode:?}, {} appends, {} seals): p50={:.2?} p999={:.2?} max={:.2?}; \
         seal-boundary appends: median={:.2?} max={:.2?}",
        lat.len(),
        seal_lat.len(),
        percentile(&lat, 0.50),
        percentile(&lat, 0.999),
        lat[lat.len() - 1],
        percentile(&seal_lat, 0.50),
        seal_lat[seal_lat.len() - 1],
    );
}

fn bench(c: &mut Criterion) {
    let ds = ind(N, 2, 7);
    let engine = ShardedEngine::build(&ds, N.div_ceil(SPAN), MAX_TAU).expect("build");
    let serve = ServeEngine::new(engine, 1_024, Backpressure::Block);
    let direct = ShardedEngine::build(&ds, N.div_ceil(SPAN), MAX_TAU).expect("build");
    let scorer = durable_topk::LinearScorer::uniform(2);

    report_serving_percentiles(&serve, N as u32);
    report_seal_tail(SealMode::Synchronous);
    report_seal_tail(SealMode::Background);

    let mut g = c.benchmark_group("serving");
    g.sample_size(10);

    g.bench_function("serve_queue_64req", |b| {
        b.iter(|| {
            let handles: Vec<_> =
                (0..64).map(|i| serve.submit(request(i, N as u32)).expect("accepted")).collect();
            handles.into_iter().map(|h| h.wait().expect("served").records.len()).sum::<usize>()
        })
    });

    g.bench_function("direct_64req", |b| {
        b.iter(|| {
            (0..64)
                .map(|i| {
                    let req = request(i, N as u32);
                    direct.query(req.alg, &scorer, &req.query).records.len()
                })
                .sum::<usize>()
        })
    });

    g.bench_function("append_cross_seal_background", |b| {
        b.iter(|| {
            let mut live = ShardedEngine::new_live(2, SPAN, MAX_TAU);
            for id in 0..(SPAN + 1) as u32 {
                live.append(ds.row(id));
            }
            live.quiesce();
            live.sealed_shards()
        })
    });

    g.bench_function("append_cross_seal_sync", |b| {
        b.iter(|| {
            let mut live = EngineConfig::new(2, SPAN, MAX_TAU)
                .seal_mode(SealMode::Synchronous)
                .build()
                .expect("live config");
            for id in 0..(SPAN + 1) as u32 {
                live.append(ds.row(id));
            }
            live.sealed_shards()
        })
    });

    g.finish();
    serve.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
