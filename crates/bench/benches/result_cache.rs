//! Sealed-shard result-cache bench: the memoization claim in numbers.
//!
//! Three latency points bound the cache's value: `query_direct_uncached`
//! is what every probe of a sealed tail costs without the cache,
//! `query_hot_hit` is the memoized replay (key hash + clone of the
//! answer), and `query_miss_tiny_budget` is the probe-plus-failed-admit
//! overhead a miss adds on top of the recompute (a 1-byte budget admits
//! nothing, so every probe stays a miss forever).
//!
//! `zipf_mix_cached` replays a skewed scorer mix — rank-r of a 12-scorer
//! pool gets ~1/r of the traffic, the shape of a serving tier where a few
//! preference vectors dominate — and the one-shot report before the group
//! prints the steady-state hit rate the budget sustains. The seal-storm
//! pair streams a batch across several shard seals with eight *verified*
//! standing subscriptions: every seal re-runs every subscription's full
//! recompute over the sealed prefix, which is exactly the repeated
//! sealed-tail traffic the cache absorbs.

use criterion::{criterion_group, criterion_main, Criterion};
use durable_topk::{
    Algorithm, Backpressure, Dataset, DurableQuery, EngineConfig, LinearScorer, PagedStorage,
    ScorerSpec, ServeEngine, ServeRequest, ShardedEngine, Window,
};
use durable_topk_workloads::ind;
use std::sync::Arc;
use std::time::Instant;

const N: usize = 20_000;
const SPAN: usize = 2_048;
const MAX_TAU: u32 = 256;
/// Sealed chunks the paged backend keeps resident.
const SPILL_AFTER: usize = 2;
/// Default cache budget for the cached engines (32 MiB).
const BUDGET: usize = 32 << 20;

/// Seal-storm shape: a short span forces a seal every 512 appends.
const STORM_BASE: usize = 1_024;
const STORM_BATCH: usize = 2_048;
const STORM_SPAN: usize = 512;
const STORM_SUBS: usize = 8;

/// Ingests the whole stream into a live paged engine, optionally fronted
/// by a result cache with the given byte budget.
fn grow(ds: &Dataset, cache_budget: Option<usize>) -> ShardedEngine {
    let mut config = EngineConfig::new(2, SPAN, MAX_TAU)
        .storage(Arc::new(PagedStorage::with_temp_file(SPILL_AFTER).expect("temp-file backend")));
    if let Some(budget) = cache_budget {
        config = config.result_cache(budget);
    }
    let mut live = config.build().expect("paged live config");
    for id in 0..ds.len() as u32 {
        live.append(ds.row(id));
    }
    live.quiesce();
    live
}

/// The skewed scorer pool: rank r gets ~1/(r+1) of the replayed traffic.
fn zipf_pool() -> (Vec<LinearScorer>, Vec<usize>) {
    let pool: Vec<LinearScorer> = (0..12)
        .map(|i| {
            let w = 0.2 + 0.05 * i as f64;
            LinearScorer::new(vec![w, 1.0 - w])
        })
        .collect();
    let mut seq = Vec::new();
    for r in 0..pool.len() {
        for _ in 0..(24 / (r + 1)) {
            seq.push(r);
        }
    }
    (pool, seq)
}

/// One-shot hit-rate report: the zipfian mix against the cached engine,
/// plus the storage counters proving hits skip the cold tier.
fn report_zipf_hit_rate(engine: &ShardedEngine) {
    let (pool, seq) = zipf_pool();
    let q = DurableQuery { k: 5, tau: MAX_TAU, interval: Window::new(0, (N - 1) as u32) };
    let t = Instant::now();
    let rounds = 2_000;
    for i in 0..rounds {
        // A fixed multiplier walk through the frequency table stands in
        // for a shuffled arrival order without any run-time randomness.
        let scorer = &pool[seq[(i * 17) % seq.len()]];
        std::hint::black_box(engine.query(Algorithm::SHop, scorer, &q).records.len());
    }
    let per_query = t.elapsed().as_nanos() as f64 / rounds as f64;
    let stats = engine.result_cache().expect("cache configured").stats();
    let rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;
    eprintln!(
        "zipfian 12-scorer mix over {N} records: {per_query:.0} ns/query, hit rate \
         {:.1}% ({} hits, {} misses, {} evictions, {} bytes resident)",
        rate * 100.0,
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.resident_bytes,
    );
}

fn storm_row(i: usize) -> [f64; 2] {
    let x = ((i * 37) % 101) as f64;
    [x, 101.0 - x]
}

/// Streams the seal-storm batch with verified subscriptions and returns
/// ns per append; every seal re-verifies every subscription with a full
/// recompute over the sealed prefix.
fn seal_storm(cache_budget: Option<usize>) -> f64 {
    let mut config = EngineConfig::new(2, STORM_SPAN, 64);
    if let Some(budget) = cache_budget {
        config = config.result_cache(budget);
    }
    let mut engine = config.build().expect("storm config");
    for i in 0..STORM_BASE {
        engine.append(&storm_row(i));
    }
    let serving = ServeEngine::new(engine, 64, Backpressure::Block);
    for s in 0..STORM_SUBS {
        let req = ServeRequest {
            alg: Algorithm::THop,
            query: DurableQuery {
                k: 1 + s % 4,
                tau: 1 + (s as u32) * 7 % 64,
                interval: Window::new(0, u32::MAX),
            },
            scorer: ScorerSpec::Uniform,
        };
        serving.subscribe_verified(req).expect("valid subscription");
    }
    let t = Instant::now();
    for i in STORM_BASE..STORM_BASE + STORM_BATCH {
        serving.append(&storm_row(i)).expect("arity matches");
    }
    serving.quiesce();
    serving.subscription_sync();
    let per_append = t.elapsed().as_nanos() as f64 / STORM_BATCH as f64;
    serving.shutdown();
    per_append
}

fn bench(c: &mut Criterion) {
    let ds = ind(N, 2, 7);
    let uncached = grow(&ds, None);
    let cached = grow(&ds, Some(BUDGET));
    let starved = grow(&ds, Some(1));
    let scorer = LinearScorer::uniform(2);
    // The oldest interval: spilled on this backend, so the direct path
    // pays a cold fault per probe — the traffic the cache absorbs.
    let q = DurableQuery { k: 5, tau: MAX_TAU, interval: Window::new(0, (2 * SPAN - 1) as u32) };

    // Warm the hit path once so the group measures steady-state replays.
    std::hint::black_box(cached.query(Algorithm::SHop, &scorer, &q).records.len());
    report_zipf_hit_rate(&cached);

    let mut g = c.benchmark_group("result_cache");
    g.sample_size(10);

    g.bench_function("query_direct_uncached", |b| {
        b.iter(|| uncached.query(Algorithm::SHop, &scorer, &q).records.len())
    });
    g.bench_function("query_hot_hit", |b| {
        b.iter(|| cached.query(Algorithm::SHop, &scorer, &q).records.len())
    });
    g.bench_function("query_miss_tiny_budget", |b| {
        b.iter(|| starved.query(Algorithm::SHop, &scorer, &q).records.len())
    });

    let (pool, seq) = zipf_pool();
    let mut i = 0usize;
    g.bench_function("zipf_mix_cached", |b| {
        b.iter(|| {
            i += 1;
            let scorer = &pool[seq[(i * 17) % seq.len()]];
            cached.query(Algorithm::SHop, scorer, &q).records.len()
        })
    });

    g.bench_function("seal_storm_8subs_uncached", |b| b.iter(|| seal_storm(None)));
    g.bench_function("seal_storm_8subs_cached", |b| b.iter(|| seal_storm(Some(BUDGET))));

    g.finish();

    let stats = cached.result_cache().expect("cache configured").stats();
    let storage = cached.storage().stats();
    eprintln!(
        "cached engine after the group: {} hits, {} misses, {} evictions, {} bytes resident; \
         storage paid {} cold fetches",
        stats.hits, stats.misses, stats.evictions, stats.resident_bytes, storage.cold_fetches,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
