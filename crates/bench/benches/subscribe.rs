//! Standing-query subscription bench: refresh cost vs change rate, the
//! zero-change fast path, and the FULL-vs-INCREMENTAL break-even.
//!
//! Three stream shapes pin the change rate of a tail-following
//! subscription:
//!
//! * **descending** — every arrival scores below all of recent history,
//!   so no arrival can enter a standing top-k: the skyband gate skips
//!   everything and appends ride the zero-change fast path.
//! * **ascending** — every arrival beats all of history: the worst case,
//!   every append probes every subscription.
//! * **mixed(1/p)** — one ascending spike every `p` arrivals, the dial
//!   between those extremes.
//!
//! `append_no_subs` vs `append_gated_8subs` is the fast-path overhead
//! claim (they must be within noise of each other);
//! `append_hot_8subs` is the bounded-probe worst case; and
//! `full_recompute_per_append` is what a subscriber *would* pay keeping a
//! result set current by re-running `try_query` after every arrival —
//! the FULL side of the break-even table printed before the criterion
//! groups run.

use criterion::{criterion_group, criterion_main, Criterion};
use durable_topk::{
    Algorithm, Backpressure, DurableQuery, EngineConfig, ScorerSpec, ServeEngine, ServeRequest,
    Window,
};
use std::time::Instant;

const BASE: usize = 2_048;
const BATCH: usize = 1_000;
const SPAN: usize = 16_384;
const MAX_TAU: u32 = 256;
const K_MAX: usize = 8;
const SUB_TAU: u32 = 128;
const SUB_K: usize = 4;

/// Stream shapes with a known standing-top-k change rate.
#[derive(Clone, Copy, Debug)]
enum Shape {
    Descending,
    Ascending,
    /// One durable spike every `p` arrivals.
    Mixed(usize),
}

/// Row `i` of a shape, over the whole base + batch timeline.
fn row(shape: Shape, i: usize) -> [f64; 2] {
    let jitter = ((i * 37) % 101) as f64 * 1e-3;
    match shape {
        Shape::Descending => {
            let v = (BASE + BATCH + 10 - i) as f64;
            [v + jitter, v - jitter]
        }
        Shape::Ascending => {
            let v = i as f64;
            [v + jitter, v - jitter]
        }
        Shape::Mixed(p) => {
            if i % p == 0 {
                // A spike above everything so far: durable on arrival.
                let v = 1e6 + i as f64;
                [v, v]
            } else {
                let v = (BASE + BATCH + 10 - i) as f64;
                [v + jitter, v - jitter]
            }
        }
    }
}

/// A live serving engine pre-loaded with the shape's first `BASE` records,
/// sized so the measured batch crosses no seal boundary (seal cost is
/// `serving.rs`'s subject, not this bench's).
fn engine_with_base(shape: Shape) -> ServeEngine {
    let mut engine =
        EngineConfig::new(2, SPAN, MAX_TAU).skyband_bound(K_MAX).build().expect("base config");
    for i in 0..BASE {
        engine.append(&row(shape, i));
    }
    ServeEngine::new(engine, 64, Backpressure::Block)
}

fn tail_request(s: usize) -> ServeRequest {
    ServeRequest {
        alg: Algorithm::THop,
        query: DurableQuery {
            k: 1 + (SUB_K + s) % K_MAX,
            tau: SUB_TAU,
            interval: Window::new(0, u32::MAX),
        },
        scorer: ScorerSpec::Uniform,
    }
}

/// Streams the batch with `subs` standing subscriptions and returns
/// (ns per append, refreshes, fast-path skips).
fn stream_batch(shape: Shape, subs: usize) -> (f64, u64, u64) {
    let serving = engine_with_base(shape);
    for s in 0..subs {
        serving.subscribe(tail_request(s)).expect("valid subscription");
    }
    let t = Instant::now();
    for i in BASE..BASE + BATCH {
        serving.append(&row(shape, i)).expect("arity matches");
    }
    serving.subscription_sync();
    let per_append = t.elapsed().as_nanos() as f64 / BATCH as f64;
    let stats = serving.stats();
    serving.shutdown();
    (per_append, stats.refreshes, stats.fast_path_skips)
}

/// Streams the batch with no subscriptions, re-running the full
/// recompute after every `poll` appends — the FULL side of the ledger.
fn stream_full(shape: Shape, poll: usize) -> f64 {
    let serving = engine_with_base(shape);
    let req = tail_request(0);
    let t = Instant::now();
    for i in BASE..BASE + BATCH {
        serving.append(&row(shape, i)).expect("arity matches");
        if (i - BASE) % poll == 0 {
            let engine = serving.engine();
            let full = DurableQuery {
                k: req.query.k,
                tau: req.query.tau,
                interval: Window::new(0, i as u32),
            };
            let scorer = durable_topk::LinearScorer::uniform(2);
            let out = engine.try_query(req.alg, &scorer, &full).expect("query");
            std::hint::black_box(out.records.len());
        }
    }
    let per_append = t.elapsed().as_nanos() as f64 / BATCH as f64;
    serving.shutdown();
    per_append
}

/// One-shot FULL-vs-INCREMENTAL table across change rates — the numbers
/// BENCHMARKS.md records.
fn report_break_even() {
    eprintln!(
        "FULL vs INCREMENTAL refresh, {BATCH} appends over {BASE} base records, 1 subscription \
         (k={SUB_K}, tau={SUB_TAU}):"
    );
    let shapes = [
        ("descending (0% durable)", Shape::Descending),
        ("mixed 1/64 (~2% durable)", Shape::Mixed(64)),
        ("mixed 1/8 (~12% durable)", Shape::Mixed(8)),
        ("ascending (100% durable)", Shape::Ascending),
    ];
    for (label, shape) in shapes {
        let (incr, refreshes, skips) = stream_batch(shape, 1);
        let full = stream_full(shape, 1);
        eprintln!(
            "  {label:<26} INCREMENTAL {incr:>9.0} ns/append ({refreshes} probes, {skips} \
             zero-change skips)   FULL-per-append {full:>9.0} ns/append",
        );
    }
    let (none, _, _) = stream_batch(Shape::Descending, 0);
    let (gated, _, skips) = stream_batch(Shape::Descending, 8);
    eprintln!(
        "zero-change fast path: no subs {none:.0} ns/append vs 8 gated subs {gated:.0} ns/append \
         ({skips} skips)",
    );
}

fn bench(c: &mut Criterion) {
    report_break_even();

    let mut g = c.benchmark_group("subscribe");
    g.sample_size(10);

    // Fast-path claim: these two must be within noise of each other.
    g.bench_function("append_1k_no_subs", |b| b.iter(|| stream_batch(Shape::Descending, 0).0));
    g.bench_function("append_1k_gated_8subs", |b| b.iter(|| stream_batch(Shape::Descending, 8).0));

    // Worst case: every arrival probes all eight standing top-ks.
    g.bench_function("append_1k_hot_8subs", |b| b.iter(|| stream_batch(Shape::Ascending, 8).0));

    // The FULL baseline the incremental path replaces.
    g.bench_function("append_1k_full_recompute_poll8", |b| {
        b.iter(|| stream_full(Shape::Mixed(8), 8))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
