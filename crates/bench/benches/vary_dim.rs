//! Criterion micro-bench for the Fig. 11 family: dimensionality impact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use durable_topk::{Algorithm, DurableTopKEngine, LinearScorer};
use durable_topk_bench::default_query;
use durable_topk_workloads::network_like;

fn bench(c: &mut Criterion) {
    let n = 12_000;
    let base = network_like(n, 42);
    let mut g = c.benchmark_group("vary_dim_network");
    g.sample_size(10);
    for d in [2usize, 10, 30] {
        let cols: Vec<usize> = (0..d).collect();
        let ds = base.project(&cols);
        let engine = DurableTopKEngine::new(ds).with_skyband_index(16);
        let scorer = LinearScorer::uniform(d);
        let q = default_query(n);
        for alg in [Algorithm::THop, Algorithm::SBand, Algorithm::SHop] {
            g.bench_with_input(BenchmarkId::new(alg.name(), format!("d{d}")), &q, |b, q| {
                b.iter(|| engine.query(alg, &scorer, q))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
