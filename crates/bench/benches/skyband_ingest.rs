//! Cost and payoff of incremental skyband maintenance on the live path.
//!
//! The `append_*` pair prices the maintainer itself: identical ingestion
//! runs with the durable k-skyband maintainer off (S-Band falls back to
//! S-Hop on the head) and on (S-Band native everywhere). The `head_*`
//! pair measures what that buys: the same `DurTop` query against a head
//! shard that never sealed, answered by native S-Band versus S-Hop — the
//! algorithm the old fallback substituted.

use criterion::{criterion_group, criterion_main, Criterion};
use durable_topk::{Algorithm, DurableQuery, EngineConfig, LinearScorer, ShardedEngine, Window};
use durable_topk_workloads::ind;

const N: usize = 20_000;
const SPAN: usize = 4_096;
const MAX_TAU: u32 = 512;
const K_MAX: usize = 8;

/// Records kept entirely in the mutable head for the query pair: a span
/// no run ever reaches.
const HEAD_N: usize = 8_192;

fn bench(c: &mut Criterion) {
    let ds = ind(N, 2, 7);
    let scorer = LinearScorer::uniform(2);
    let mut g = c.benchmark_group("skyband_ingest");
    g.sample_size(10);

    g.bench_function("append_20k_no_skyband", |b| {
        b.iter(|| {
            let mut live = ShardedEngine::new_live(2, SPAN, MAX_TAU);
            for id in 0..N as u32 {
                live.append(ds.row(id));
            }
            live.len()
        })
    });

    g.bench_function("append_20k_skyband_k8", |b| {
        b.iter(|| {
            let mut live = EngineConfig::new(2, SPAN, MAX_TAU)
                .skyband_bound(K_MAX)
                .build()
                .expect("live config");
            for id in 0..N as u32 {
                live.append(ds.row(id));
            }
            live.len()
        })
    });

    // A pure head shard: span larger than the run, so every record stays
    // in the appendable forest — the regime the S-Hop fallback used to
    // own exclusively.
    let mut head = EngineConfig::new(2, HEAD_N * 2, MAX_TAU)
        .skyband_bound(K_MAX)
        .build()
        .expect("head config");
    for id in 0..HEAD_N as u32 {
        head.append(ds.row(id));
    }
    assert_eq!(head.sealed_shards(), 0, "the whole run must stay in the head");
    let q = DurableQuery { k: 5, tau: 256, interval: Window::new(0, HEAD_N as u32 - 1) };
    let native = head.query(Algorithm::SBand, &scorer, &q);
    assert!(native.stats.fallback.is_none(), "the head must serve S-Band natively");
    assert_eq!(
        native.records,
        head.query(Algorithm::SHop, &scorer, &q).records,
        "both series must answer identically"
    );

    g.bench_function("head_sband_native", |b| {
        b.iter(|| head.query(Algorithm::SBand, &scorer, &q).records.len())
    });

    g.bench_function("head_shop_fallback_equivalent", |b| {
        b.iter(|| head.query(Algorithm::SHop, &scorer, &q).records.len())
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
