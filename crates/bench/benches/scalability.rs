//! Criterion micro-bench for the Fig. 12 family: input-size scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use durable_topk::{Algorithm, DurableTopKEngine, LinearScorer};
use durable_topk_bench::default_query;
use durable_topk_workloads::{anti, ind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalability");
    g.sample_size(10);
    for n in [10_000usize, 40_000, 160_000] {
        for dist in ["IND", "ANTI"] {
            let ds = if dist == "IND" { ind(n, 2, 42) } else { anti(n, 42) };
            let engine = DurableTopKEngine::new(ds).with_skyband_index(16);
            let scorer = LinearScorer::uniform(2);
            let q = default_query(n);
            for alg in [Algorithm::THop, Algorithm::SHop] {
                g.bench_with_input(
                    BenchmarkId::new(format!("{}_{dist}", alg.name()), n),
                    &q,
                    |b, q| b.iter(|| engine.query(alg, &scorer, q)),
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
