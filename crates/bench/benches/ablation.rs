//! Criterion micro-bench for the design-choice ablations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use durable_topk::{Algorithm, DurableTopKEngine, LinearScorer};
use durable_topk_bench::default_query;
use durable_topk_workloads::{nba_attribute, nba_like};

fn bench(c: &mut Criterion) {
    let n = 30_000;
    let ds = nba_like(n, 42).project(&[nba_attribute("points"), nba_attribute("assists")]);
    let scorer = LinearScorer::new(vec![0.5, 0.5]);
    let q = default_query(n);
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    for leaf in [16usize, 128, 1024] {
        let engine = DurableTopKEngine::with_leaf_size(ds.clone(), leaf);
        g.bench_with_input(BenchmarkId::new("leaf_size_thop", leaf), &q, |b, q| {
            b.iter(|| engine.query(Algorithm::THop, &scorer, q))
        });
    }
    let engine = DurableTopKEngine::new(ds.clone());
    for alg in [Algorithm::SHop, Algorithm::SHopTop1] {
        g.bench_with_input(BenchmarkId::new("refill_mode", alg.name()), &q, |b, q| {
            b.iter(|| engine.query(alg, &scorer, q))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
