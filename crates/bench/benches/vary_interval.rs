//! Criterion micro-bench for the Fig. 10 family: query time as |I| varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use durable_topk::{Algorithm, DurableTopKEngine, LinearScorer};
use durable_topk_bench::query_pct;
use durable_topk_workloads::network_like;

fn bench(c: &mut Criterion) {
    let n = 40_000;
    let ds = network_like(n, 42).project(&[0, 1]);
    let engine = DurableTopKEngine::new(ds).with_skyband_index(16);
    let scorer = LinearScorer::new(vec![0.5, 0.5]);
    let mut g = c.benchmark_group("vary_interval_network2");
    g.sample_size(10);
    for pct in [0.10f64, 0.40, 0.80] {
        for alg in [Algorithm::TBase, Algorithm::THop, Algorithm::SHop] {
            let q = query_pct(n, 10, 0.10, pct);
            g.bench_with_input(
                BenchmarkId::new(alg.name(), format!("I{}%", (pct * 100.0) as u32)),
                &q,
                |b, q| b.iter(|| engine.query(alg, &scorer, q)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
