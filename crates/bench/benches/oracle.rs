//! Criterion micro-bench for the top-k building block itself.
//!
//! The `segtree`/`scan` series use the scratch-reuse path
//! ([`TopKOracle::top_k_into`]) — the steady-state regime of the query
//! pipeline; `segtree_alloc` measures the one-off allocating wrapper for
//! comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use durable_topk::{
    LinearScorer, OracleScratch, ScanOracle, SegTreeOracle, TopKOracle, TopKResult, Window,
};
use durable_topk_workloads::ind;

fn bench(c: &mut Criterion) {
    let n = 100_000u32;
    let ds = ind(n as usize, 2, 42);
    let seg = SegTreeOracle::build(&ds);
    let scan = ScanOracle::new();
    let scorer = LinearScorer::uniform(2);
    let mut scratch = OracleScratch::new();
    let mut out = TopKResult::empty();
    let mut g = c.benchmark_group("topk_oracle");
    g.sample_size(20);
    for wlen in [1_000u32, 10_000, 100_000] {
        let w = Window::new(n - wlen, n - 1);
        g.bench_with_input(BenchmarkId::new("segtree", wlen), &w, |b, w| {
            b.iter(|| seg.top_k_into(&ds, &scorer, 10, *w, &mut scratch, &mut out))
        });
        g.bench_with_input(BenchmarkId::new("segtree_alloc", wlen), &w, |b, w| {
            b.iter(|| seg.top_k(&ds, &scorer, 10, *w))
        });
        g.bench_with_input(BenchmarkId::new("scan", wlen), &w, |b, w| {
            b.iter(|| scan.top_k_into(&ds, &scorer, 10, *w, &mut scratch, &mut out))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
