//! Criterion micro-bench for the Fig. 9 family: query time as k varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use durable_topk::{Algorithm, DurableTopKEngine, LinearScorer, QueryContext};
use durable_topk_bench::query_pct;
use durable_topk_workloads::{nba_attribute, nba_like};

fn bench(c: &mut Criterion) {
    let n = 30_000;
    let ds = nba_like(n, 42).project(&[nba_attribute("points"), nba_attribute("assists")]);
    let engine = DurableTopKEngine::new(ds).with_skyband_index(64);
    let scorer = LinearScorer::new(vec![0.6, 0.4]);
    let mut ctx = QueryContext::new();
    let mut g = c.benchmark_group("vary_k_nba2");
    g.sample_size(10);
    for k in [5usize, 20, 50] {
        for alg in [Algorithm::THop, Algorithm::SBand, Algorithm::SHop] {
            let q = query_pct(n, k, 0.10, 0.50);
            g.bench_with_input(BenchmarkId::new(alg.name(), format!("k{k}")), &q, |b, q| {
                b.iter(|| engine.query_with(alg, &scorer, q, &mut ctx))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
